lib/experiments/estimator.mli: Powermodel
