lib/experiments/estimator.ml: Powermodel
