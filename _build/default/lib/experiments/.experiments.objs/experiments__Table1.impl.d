lib/experiments/table1.ml: Circuits Estimator Float Gatesim Hashtbl List Netlist Powermodel Stimulus Sweep
