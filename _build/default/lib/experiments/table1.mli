(** Table 1 reproduction: ARE of the average estimators ([Con], [Lin],
    [ADD]) and of the conservative upper bounds (constant vs
    pattern-dependent ADD) for every benchmark in the suite, plus the MAX
    bounds used and the model construction CPU times. *)

type row = {
  name : string;
  inputs : int;     (** paper column n *)
  gates : int;      (** paper column N *)
  are_con : float;
  are_lin : float;
  are_add : float;
  max_avg : int;
  cpu_avg : float;
  are_con_ub : float;  (** constant worst-case estimator's ARE on maxima *)
  are_add_ub : float;  (** pattern-dependent bound's ARE on maxima *)
  max_ub : int;
  cpu_ub : float;
}

type config = {
  vectors : int;
  char_vectors : int;
  seed : int;
  max_scale : float;
      (** multiplies the Table 1 MAX bounds; < 1 for quicker runs *)
}

val default_config : config

val run_entry : ?config:config -> Circuits.Suite.entry -> row

val run : ?config:config -> ?names:string list -> unit -> row list
(** The full table (or a named subset), in suite order. *)
