(** Zero-delay gate-level simulation with switched-capacitance accounting.

    This is the golden reference of the paper's experiments: on each input
    transition it evaluates the netlist before and after, and charges the
    load capacitance of every gate output that rises (Eq. 1–3).  Energy is
    [Vdd^2 * C]; short-circuit currents, charge sharing and glitches are
    parasitic phenomena outside the zero-delay golden model by design. *)

type t

val default_vdd : float
(** Supply voltage used when none is given (3.3 V, typical of the paper's
    era). *)

val create :
  ?output_load:float -> ?loads:float array -> Netlist.Circuit.t -> t
(** Compile a circuit: back-annotates per-net loads via
    {!Netlist.Circuit.loads}, or uses [loads] verbatim (indexed by net;
    must cover every net) when supplied. *)

val circuit : t -> Netlist.Circuit.t
val loads : t -> float array

val eval : t -> bool array -> bool array
(** All net values under the given primary-input vector. *)

val eval_outputs : t -> bool array -> bool array

val switched_capacitance : t -> bool array -> bool array -> float
(** [switched_capacitance t x_i x_f] is the total load (fF) of gate outputs
    rising in the transition — the golden value the paper's
    [C(x_i, x_f)] models. *)

val switched_capacitance_of_values : t -> bool array -> bool array -> float
(** Same, from precomputed net-value arrays (avoids re-evaluating shared
    endpoints when sweeping a sequence). *)

val energy : ?vdd:float -> t -> bool array -> bool array -> float
(** [Vdd^2 * C], in fJ when loads are fF. *)

(** {1 Sequence runs} *)

type run = {
  patterns : int;
  average : float;
  maximum : float;
  total : float;
  per_pattern : float array;
}

val run : t -> bool array array -> run
(** Simulate a vector sequence (at least two vectors) and account every
    consecutive transition. *)

val average_power : ?vdd:float -> period:float -> run -> float
(** Mean supply power for a clock period in seconds (fJ/s when loads are
    fF). *)

val worst_case_capacitance_exhaustive : t -> float
(** Exact maximum over all input-vector pairs, by exhaustive enumeration —
    exponential, restricted to circuits with at most 13 inputs.  Used by
    tests to validate conservative bounds. *)
