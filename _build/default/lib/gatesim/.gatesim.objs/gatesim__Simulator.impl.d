lib/gatesim/simulator.ml: Array Netlist
