lib/gatesim/simulator.mli: Netlist
