(** Parity trees — substitute for the MCNC [parity] benchmark. *)

val tree : ?bits:int -> ?name:string -> unit -> Netlist.Circuit.t
(** Balanced XOR-cell tree with true and complemented outputs (default 16
    inputs). *)

val parity : unit -> Netlist.Circuit.t
(** The Table 1 instance: 16 inputs. *)

val parity_nand : ?bits:int -> unit -> Netlist.Circuit.t
(** Same function with every XOR expanded into four NAND2 gates — a second
    implementation of the same behaviour, used by the ablation benches to
    demonstrate that the white-box model follows the implementation. *)
