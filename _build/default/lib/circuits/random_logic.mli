(** Seeded random multi-level logic — substitutes for the unstructured MCNC
    benchmarks ([x1], [x2], [k2]).

    The generator produces deterministic (seeded) gate-level DAGs with
    realistic locality and a {e support cap} that keeps every node function
    BDD-tractable, which the white-box model construction requires.  See
    DESIGN.md for why this substitution preserves the paper's claims. *)

type spec = {
  name : string;
  inputs : int;
  gates : int;
  seed : int;
  window : int;       (** operands are drawn from this many recent nets *)
  support_cap : int;  (** max primary-input support of any generated net *)
  max_outputs : int;  (** dangling nets kept as individual outputs *)
}

val generate : spec -> Netlist.Circuit.t
(** Deterministic in [spec].  Every generated net is live: unread nets
    become outputs (spilling into a parity collector past [max_outputs]),
    and unused primary inputs are folded into that collector too. *)

val x2 : unit -> Netlist.Circuit.t
(** 10 inputs, ~40 gates, windowed random DAG. *)

val x1 : unit -> Netlist.Circuit.t
(** 49 inputs, ~300 gates, PLA-style. *)

val k2 : unit -> Netlist.Circuit.t
(** 45 inputs, ~1400 gates, PLA-style. *)

(** {1 PLA-style generation}

    Two-level AND-OR logic with random sparse cubes — the character of the
    larger MCNC benchmarks ([k2], [x1] are PLA-derived), and the reason
    their node-function BDDs stay small despite wide supports. *)

type pla_spec = {
  pla_name : string;
  pla_inputs : int;
  pla_outputs : int;
  cubes_per_output : int;
  min_literals : int;
  max_literals : int;
  input_window : int;
      (** per-output support bound: cubes draw literals from a contiguous
          (wrapping) window of this many inputs *)
  pla_seed : int;
}

val generate_pla : pla_spec -> Netlist.Circuit.t
