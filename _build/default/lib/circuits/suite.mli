(** The benchmark suite of Table 1.

    One entry per row of the paper's Table 1, built from the substitute
    generators of this library (see DESIGN.md for the substitution
    rationale).  [max_avg] and [max_ub] are the Table 1 ADD-size bounds
    ([MAX]) used when constructing the average and upper-bound models. *)

type entry = {
  name : string;
  description : string;
  build : unit -> Netlist.Circuit.t;
  max_avg : int;  (** Table 1 [MAX], average-estimator model *)
  max_ub : int;   (** Table 1 [MAX], upper-bound model *)
}

val all : entry list
(** The 13 Table 1 rows, in the paper's order. *)

val names : string list

val find : string -> entry option

val case_study : entry
(** [cm85], the circuit of the Fig. 7 case study. *)
