(* Seeded random multi-level logic — substitutes for the unstructured MCNC
   benchmarks ([x1], [x2], [k2]).

   Two properties matter for the reproduction:
   - the netlist must be a genuine multi-level DAG over the cell library
     with realistic fan-in/fan-out, and
   - node functions must stay BDD-tractable, because the model construction
     builds the BDD of every internal node.  We enforce the latter with a
     {e support cap}: a gate is only accepted if the union of its operand
     supports (the primary inputs it transitively depends on) stays under
     the cap.  Operands are drawn from a sliding window of recent nets plus
     the primary inputs, giving the locality real logic has. *)

module Int_set = Set.Make (Int)

type spec = {
  name : string;
  inputs : int;
  gates : int;
  seed : int;
  window : int;      (* how many recent nets operands are drawn from *)
  support_cap : int; (* max primary-input support of any net *)
  max_outputs : int; (* dangling nets kept as individual outputs *)
}

let kind_menu =
  (* (weight, arity, constructor) *)
  [
    (3, 1, fun _ -> Netlist.Cell.Inv);
    (4, 2, fun n -> Netlist.Cell.And n);
    (4, 2, fun n -> Netlist.Cell.Or n);
    (3, 2, fun n -> Netlist.Cell.Nand n);
    (3, 2, fun n -> Netlist.Cell.Nor n);
    (2, 2, fun _ -> Netlist.Cell.Xor);
    (1, 2, fun _ -> Netlist.Cell.Xnor);
    (2, 3, fun _ -> Netlist.Cell.Mux);
    (2, 3, fun n -> Netlist.Cell.And n);
    (2, 3, fun n -> Netlist.Cell.Or n);
    (1, 4, fun n -> Netlist.Cell.Nand n);
    (1, 4, fun n -> Netlist.Cell.Nor n);
  ]

let total_weight = List.fold_left (fun acc (w, _, _) -> acc + w) 0 kind_menu

let pick_kind prng =
  let roll = Stimulus.Prng.int prng ~bound:total_weight in
  let rec go acc = function
    | [] -> assert false
    | (w, arity, mk) :: rest ->
      if roll < acc + w then (mk arity, arity) else go (acc + w) rest
  in
  go 0 kind_menu

let generate spec =
  let open Netlist in
  if spec.inputs < 2 then invalid_arg "Random_logic.generate: need >= 2 inputs";
  if spec.gates < 1 then invalid_arg "Random_logic.generate: need >= 1 gate";
  let b = Builder.create ~name:spec.name in
  let ins = Builder.inputs b "x" spec.inputs in
  let prng = Stimulus.Prng.create spec.seed in
  let support : (Circuit.net, Int_set.t) Hashtbl.t = Hashtbl.create 512 in
  let reads : (Circuit.net, int) Hashtbl.t = Hashtbl.create 512 in
  Array.iteri
    (fun i n ->
      Hashtbl.replace support n (Int_set.singleton i);
      Hashtbl.replace reads n 0)
    ins;
  (* recent-first list of candidate operand nets *)
  let pool = ref (Array.to_list ins) in
  let pool_array = ref (Array.of_list !pool) in
  let refresh_pool () = pool_array := Array.of_list !pool in
  let record out sup =
    Hashtbl.replace support out sup;
    Hashtbl.replace reads out 0;
    pool := out :: !pool;
    refresh_pool ()
  in
  let mark_read n = Hashtbl.replace reads n (Hashtbl.find reads n + 1) in
  let created = ref 0 in
  while !created < spec.gates do
    let arr = !pool_array in
    let window = min (Array.length arr) (spec.window + spec.inputs) in
    let pick () = arr.(Stimulus.Prng.int prng ~bound:window) in
    let kind, arity = pick_kind prng in
    let rec attempt tries =
      if tries = 0 then None
      else begin
        let operands = Array.init arity (fun _ -> pick ()) in
        let sup =
          Array.fold_left
            (fun acc n -> Int_set.union acc (Hashtbl.find support n))
            Int_set.empty operands
        in
        if Int_set.cardinal sup <= spec.support_cap then Some (operands, sup)
        else attempt (tries - 1)
      end
    in
    (match attempt 60 with
    | Some (operands, sup) ->
      Array.iter mark_read operands;
      let out = Builder.gate b kind operands in
      record out sup
    | None ->
      (* Support pressure too high for a wide gate: fall back to an
         inverter of a recent net, which never grows any support. *)
      let n = pick () in
      mark_read n;
      record (Builder.not_ b n) (Hashtbl.find support n));
    incr created
  done;
  (* Every net nobody reads becomes an output, so no logic is dead; beyond
     [max_outputs] the rest (plus any never-used primary input) is folded
     into a final parity collector to keep the interface narrow. *)
  let dangling =
    List.filter
      (fun n -> Hashtbl.find reads n = 0 && n >= spec.inputs)
      !pool
  in
  let unused_inputs =
    List.filter (fun n -> Hashtbl.find reads n = 0) (Array.to_list ins)
  in
  let rec take k = function
    | [] -> ([], [])
    | x :: rest ->
      if k = 0 then ([], x :: rest)
      else begin
        let kept, spilled = take (k - 1) rest in
        (x :: kept, spilled)
      end
  in
  let kept, spilled = take spec.max_outputs dangling in
  List.iteri (fun i n -> Builder.output b (Printf.sprintf "o%d" i) n) kept;
  (match spilled @ unused_inputs with
  | [] -> ()
  | extras -> Builder.output b "ox" (Builder.xor_n b extras));
  Builder.finish b

(* PLA-style random logic: each output is an OR of random cubes (ANDs of
   literals).  This matches the two-level character of the larger MCNC
   benchmarks ([k2], [x1] come from PLA-based synthesis) and keeps every
   node function's BDD small even for wide supports — a cube is linear in
   its literal count, an OR of k cubes is at most about k times wider.
   Dense random functions, by contrast, have exponentially large BDDs and
   would make the white-box construction intractable for no fidelity
   gain. *)

type pla_spec = {
  pla_name : string;
  pla_inputs : int;
  pla_outputs : int;
  cubes_per_output : int;
  min_literals : int;
  max_literals : int;
  input_window : int;
      (* each output's cubes draw literals from a contiguous (wrapping)
         window of this many inputs: bounded per-output support, like the
         cone decomposition multilevel synthesis produces.  Without it an
         output function over ~40 inputs makes the transition product
         g'(x_i) * g(x_f) explode. *)
  pla_seed : int;
}

let generate_pla spec =
  let open Netlist in
  if spec.pla_inputs < 2 then invalid_arg "Random_logic.generate_pla: inputs";
  if spec.min_literals < 1 || spec.max_literals < spec.min_literals then
    invalid_arg "Random_logic.generate_pla: literal bounds";
  let b = Builder.create ~name:spec.pla_name in
  let ins = Builder.inputs b "x" spec.pla_inputs in
  let prng = Stimulus.Prng.create spec.pla_seed in
  let inverted = Array.make spec.pla_inputs None in
  let inv i =
    match inverted.(i) with
    | Some n -> n
    | None ->
      let n = Builder.not_ b ins.(i) in
      inverted.(i) <- Some n;
      n
  in
  let window = min spec.input_window spec.pla_inputs in
  let random_cube window_start =
    let width =
      min window
        (spec.min_literals
        + Stimulus.Prng.int prng
            ~bound:(spec.max_literals - spec.min_literals + 1))
    in
    (* choose distinct inputs for the literals, within the window *)
    let chosen = Hashtbl.create 8 in
    let rec pick k acc =
      if k = 0 then acc
      else begin
        let i =
          (window_start + Stimulus.Prng.int prng ~bound:window)
          mod spec.pla_inputs
        in
        if Hashtbl.mem chosen i then pick k acc
        else begin
          Hashtbl.replace chosen i ();
          let lit =
            if Stimulus.Prng.bool prng ~p:0.5 then ins.(i) else inv i
          in
          pick (k - 1) (lit :: acc)
        end
      end
    in
    Builder.and_n b (pick width [])
  in
  for o = 0 to spec.pla_outputs - 1 do
    let window_start = Stimulus.Prng.int prng ~bound:spec.pla_inputs in
    let cubes =
      List.init spec.cubes_per_output (fun _ -> random_cube window_start)
    in
    Builder.output b (Printf.sprintf "y%d" o) (Builder.or_n b cubes)
  done;
  Builder.finish b

(* Table 1 instances.  Gate counts match the MCNC originals; the generated
   logic is not the same function (the originals are not redistributable)
   but has the same size, interface and unstructured character. *)

let x2 () =
  generate
    {
      name = "x2";
      inputs = 10;
      gates = 40;
      seed = 0xC0FFEE;
      window = 24;
      support_cap = 10;
      max_outputs = 7;
    }

let x1 () =
  generate_pla
    {
      pla_name = "x1";
      pla_inputs = 49;
      pla_outputs = 32;
      cubes_per_output = 4;
      min_literals = 3;
      max_literals = 6;
      input_window = 10;
      pla_seed = 0xBEEF01;
    }

let k2 () =
  generate_pla
    {
      pla_name = "k2";
      pla_inputs = 45;
      pla_outputs = 45;
      cubes_per_output = 9;
      min_literals = 5;
      max_literals = 10;
      input_window = 13;
      pla_seed = 0x5EED42;
    }

