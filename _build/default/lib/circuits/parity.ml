(* Parity trees — substitute for the MCNC [parity] benchmark (16 inputs).
   XOR trees are the classic worst case for transition-count models: every
   input toggle propagates, so pattern dependence is strong. *)

let tree ?(bits = 16) ?(name = "parity") () =
  let open Netlist in
  let b = Builder.create ~name in
  let d = Builder.inputs b "d" bits in
  let odd = Builder.xor_n b (Array.to_list d) in
  Builder.output b "odd" odd;
  Builder.output b "even" (Builder.not_ b odd);
  Builder.finish b

let parity () = tree ()

(* The same function mapped on NAND gates only (each XOR expanded into the
   4-NAND pattern) — used by ablation benchmarks to show the model tracks
   the implementation, not just the function. *)
let parity_nand ?(bits = 16) () =
  let open Netlist in
  let b = Builder.create ~name:"parity_nand" in
  let d = Builder.inputs b "d" bits in
  let xor_nand x y =
    let n1 = Builder.nand2 b x y in
    let n2 = Builder.nand2 b x n1 in
    let n3 = Builder.nand2 b y n1 in
    Builder.nand2 b n2 n3
  in
  let rec reduce = function
    | [] -> Builder.const b false
    | [ n ] -> n
    | nets ->
      let rec pair acc = function
        | [] -> List.rev acc
        | [ n ] -> List.rev (n :: acc)
        | x :: y :: rest -> pair (xor_nand x y :: acc) rest
      in
      reduce (pair [] nets)
  in
  let odd = reduce (Array.to_list d) in
  Builder.output b "odd" odd;
  Builder.output b "even" (Builder.not_ b odd);
  Builder.finish b
