(* One-hot select decode + AND-OR collection: the classic two-level
   16:1 multiplexer structure (cm150 substitute, 21 inputs with enable).

   Select lines (and the enable) are declared BEFORE the data inputs: the
   model's diagram order follows the circuit's input order, and a 16:1 mux
   whose selects sit below the data has an exponentially larger BDD (it
   must remember all 16 data bits), while selects-on-top is linear. *)
let cm150 () =
  let open Netlist in
  let b = Builder.create ~name:"cm150" in
  let sel = Builder.inputs b "s" 4 in
  let en = Builder.input b "en" in
  let data = Builder.inputs b "d" 16 in
  let nsel = Array.map (fun s -> Builder.not_ b s) sel in
  let terms =
    List.init 16 (fun k ->
        let lits =
          List.init 4 (fun j ->
              if (k lsr j) land 1 = 1 then sel.(j) else nsel.(j))
        in
        let hot = Builder.and_n b lits in
        Builder.and2 b hot data.(k))
  in
  let y = Builder.or_n b terms in
  Builder.output b "y" (Builder.and2 b y en);
  Builder.finish b

(* Tree of 2:1 mux cells with buffered selects and a programmable output
   polarity (mux substitute, 21 inputs). *)
let mux () =
  let open Netlist in
  let b = Builder.create ~name:"mux" in
  let sel = Builder.inputs b "s" 4 in
  let pol = Builder.input b "pol" in
  let data = Builder.inputs b "d" 16 in
  let level nets s =
    let rec pair acc = function
      | [] -> List.rev acc
      | [ _ ] -> invalid_arg "Muxes.mux: odd level"
      | if0 :: if1 :: rest -> pair (Builder.mux2 b ~sel:s ~if0 ~if1 :: acc) rest
    in
    pair [] nets
  in
  let sel_buf = Array.map (fun s -> Builder.buf b s) sel in
  let l0 = level (Array.to_list data) sel_buf.(0) in
  let l1 = level l0 sel_buf.(1) in
  let l2 = level l1 sel_buf.(2) in
  let y =
    match level l2 sel_buf.(3) with
    | [ y ] -> y
    | _ -> assert false
  in
  (* Both polarities are produced so the cell count is closer to the MCNC
     original and the outputs exercise inverting logic. *)
  Builder.output b "y" (Builder.xor2 b y pol);
  Builder.output b "yn" (Builder.xnor2 b y pol);
  Builder.finish b
