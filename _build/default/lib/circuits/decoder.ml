(* Address decoders — substitute for the MCNC [decod] benchmark
   (5 inputs: a 4-bit address plus an enable, 16 one-hot outputs). *)

let circuit ?(address_bits = 4) ?(enable = true) ?(name = "decod") () =
  let open Netlist in
  let b = Builder.create ~name in
  let addr = Builder.inputs b "a" address_bits in
  let en = if enable then Some (Builder.input b "en") else None in
  let naddr = Array.map (fun a -> Builder.not_ b a) addr in
  let lines = 1 lsl address_bits in
  for k = 0 to lines - 1 do
    let lits =
      List.init address_bits (fun j ->
          if (k lsr j) land 1 = 1 then addr.(j) else naddr.(j))
    in
    let lits = match en with None -> lits | Some e -> e :: lits in
    Builder.output b (Printf.sprintf "y%d" k) (Builder.and_n b lits)
  done;
  Builder.finish b

let decod () = circuit ()
