(* Small arithmetic-logic units — substitutes for the MCNC [alu2]
   (10 inputs) and [alu4] (14 inputs) benchmarks. *)

let mux_tree b ~sel ~choices =
  (* choices.(k) selected by the binary value of sel (LSB first). *)
  let open Netlist in
  let level nets s =
    match nets with
    | [] -> invalid_arg "Alu.mux_tree: no choices"
    | [ n ] -> [ n ]
    | _ ->
      let rec pair acc = function
        | [] -> List.rev acc
        | [ n ] -> List.rev (n :: acc)
        | if0 :: if1 :: rest ->
          pair (Builder.mux2 b ~sel:s ~if0 ~if1 :: acc) rest
      in
      pair [] nets
  in
  let rec go nets = function
    | [] -> (
      match nets with
      | [ n ] -> n
      | _ -> invalid_arg "Alu.mux_tree: not enough select bits")
    | s :: rest -> go (level nets s) rest
  in
  go (Array.to_list choices) (Array.to_list sel)

(* alu2 substitute: a[4] b[4] op[2]; op selects ADD / AND / OR / XOR.
   Result bits plus the adder's carry-out. *)
let alu2 () =
  let open Netlist in
  let b = Builder.create ~name:"alu2" in
  let a = Builder.inputs b "a" 4 in
  let bb = Builder.inputs b "b" 4 in
  let op = Builder.inputs b "op" 2 in
  let zero = Builder.const b false in
  let sums, cout = Adder.ripple b ~a ~b:bb ~cin:zero in
  let result =
    Array.init 4 (fun i ->
        let add_r = sums.(i) in
        let and_r = Builder.and2 b a.(i) bb.(i) in
        let or_r = Builder.or2 b a.(i) bb.(i) in
        let xor_r = Builder.xor2 b a.(i) bb.(i) in
        mux_tree b ~sel:op ~choices:[| add_r; and_r; or_r; xor_r |])
  in
  Array.iteri (fun i r -> Builder.output b (Printf.sprintf "r%d" i) r) result;
  Builder.output b "cout" cout;
  Builder.finish b

(* alu4 substitute: a[5] b[5] op[4]; 16 operations through a full mux tree
   per result bit, with both an adder and a subtractor, plus carry and zero
   flags — several hundred gates, like the MCNC original. *)
let alu4 () =
  let open Netlist in
  let b = Builder.create ~name:"alu4" in
  let a = Builder.inputs b "a" 5 in
  let bb = Builder.inputs b "b" 5 in
  let op = Builder.inputs b "op" 4 in
  let zero = Builder.const b false in
  let one = Builder.const b true in
  let nb = Array.map (fun x -> Builder.not_ b x) bb in
  let na = Array.map (fun x -> Builder.not_ b x) a in
  let add_s, add_c = Adder.ripple b ~a ~b:bb ~cin:zero in
  let sub_s, sub_c = Adder.ripple b ~a ~b:nb ~cin:one in
  let inc_s, inc_c = Adder.incrementer b ~a ~cin:one in
  let result =
    Array.init 5 (fun i ->
        let choices =
          [|
            add_s.(i);                          (* 0: a + b *)
            sub_s.(i);                          (* 1: a - b *)
            inc_s.(i);                          (* 2: a + 1 *)
            Builder.and2 b a.(i) bb.(i);        (* 3: and *)
            Builder.or2 b a.(i) bb.(i);         (* 4: or *)
            Builder.xor2 b a.(i) bb.(i);        (* 5: xor *)
            Builder.nand2 b a.(i) bb.(i);       (* 6: nand *)
            Builder.nor2 b a.(i) bb.(i);        (* 7: nor *)
            Builder.xnor2 b a.(i) bb.(i);       (* 8: xnor *)
            a.(i);                              (* 9: pass a *)
            na.(i);                             (* 10: not a *)
            bb.(i);                             (* 11: pass b *)
            nb.(i);                             (* 12: not b *)
            Builder.and2 b a.(i) nb.(i);        (* 13: a and not b *)
            Builder.or2 b a.(i) nb.(i);         (* 14: a or not b *)
            (if i = 0 then one else zero);      (* 15: constant 1 *)
          |]
        in
        mux_tree b ~sel:op ~choices)
  in
  Array.iteri (fun i r -> Builder.output b (Printf.sprintf "r%d" i) r) result;
  let carry =
    mux_tree b ~sel:[| op.(0); op.(1) |]
      ~choices:[| add_c; sub_c; inc_c; zero |]
  in
  Builder.output b "carry" carry;
  let zero_flag =
    Builder.not_ b (Builder.or_n b (Array.to_list result))
  in
  Builder.output b "zero" zero_flag;
  Builder.finish b
