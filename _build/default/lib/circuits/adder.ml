let full_adder b ~a ~b:bb ~cin =
  let open Netlist in
  let axb = Builder.xor2 b a bb in
  let sum = Builder.xor2 b axb cin in
  let carry1 = Builder.and2 b a bb in
  let carry2 = Builder.and2 b axb cin in
  let cout = Builder.or2 b carry1 carry2 in
  (sum, cout)

let half_adder b ~a ~b:bb =
  let open Netlist in
  let sum = Builder.xor2 b a bb in
  let cout = Builder.and2 b a bb in
  (sum, cout)

let ripple b ~a ~b:bb ~cin =
  let width = Array.length a in
  if Array.length bb <> width then invalid_arg "Adder.ripple: width mismatch";
  let sums = Array.make width cin in
  let carry = ref cin in
  for i = 0 to width - 1 do
    let s, c = full_adder b ~a:a.(i) ~b:bb.(i) ~cin:!carry in
    sums.(i) <- s;
    carry := c
  done;
  (sums, !carry)

let incrementer b ~a ~cin =
  let width = Array.length a in
  let sums = Array.make width cin in
  let carry = ref cin in
  for i = 0 to width - 1 do
    let s, c = half_adder b ~a:a.(i) ~b:!carry in
    sums.(i) <- s;
    carry := c
  done;
  (sums, !carry)

let circuit ~bits =
  let open Netlist in
  let b = Builder.create ~name:(Printf.sprintf "add%d" bits) in
  let a = Builder.inputs b "a" bits in
  let bb = Builder.inputs b "b" bits in
  let cin = Builder.input b "cin" in
  let sums, cout = ripple b ~a ~b:bb ~cin in
  Array.iteri (fun i s -> Builder.output b (Printf.sprintf "s%d" i) s) sums;
  Builder.output b "cout" cout;
  Builder.finish b
