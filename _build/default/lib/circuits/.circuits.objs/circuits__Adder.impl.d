lib/circuits/adder.ml: Array Builder Netlist Printf
