lib/circuits/muxes.ml: Array Builder List Netlist
