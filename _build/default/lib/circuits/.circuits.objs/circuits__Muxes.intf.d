lib/circuits/muxes.mli: Netlist
