lib/circuits/random_logic.ml: Array Builder Circuit Hashtbl Int List Netlist Printf Set Stimulus
