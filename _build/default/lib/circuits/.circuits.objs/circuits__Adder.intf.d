lib/circuits/adder.mli: Netlist
