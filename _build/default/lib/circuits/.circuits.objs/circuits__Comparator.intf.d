lib/circuits/comparator.mli: Netlist
