lib/circuits/random_logic.mli: Netlist
