lib/circuits/structured.mli: Netlist
