lib/circuits/comparator.ml: Array Builder Netlist Printf
