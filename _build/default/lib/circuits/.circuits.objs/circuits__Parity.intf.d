lib/circuits/parity.mli: Netlist
