lib/circuits/parity.ml: Array Builder List Netlist
