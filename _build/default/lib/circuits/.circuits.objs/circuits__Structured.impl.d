lib/circuits/structured.ml: Array Builder List Netlist
