lib/circuits/decoder.ml: Array Builder List Netlist Printf
