lib/circuits/alu.mli: Netlist
