lib/circuits/alu.ml: Adder Array Builder List Netlist Printf
