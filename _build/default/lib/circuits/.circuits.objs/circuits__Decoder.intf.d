lib/circuits/decoder.mli: Netlist
