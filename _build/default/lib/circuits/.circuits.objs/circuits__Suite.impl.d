lib/circuits/suite.ml: Alu Comparator Decoder List Muxes Netlist Parity Random_logic String Structured
