(** Magnitude comparators — substitutes for the MCNC [cm85] and [comp]
    benchmarks (same input counts, same function family). *)

val ripple :
  Netlist.Builder.t ->
  a:Netlist.Circuit.net array -> b:Netlist.Circuit.net array ->
  Netlist.Circuit.net * Netlist.Circuit.net * Netlist.Circuit.net
(** [(a_gt_b, a_eq_b, a_lt_b)] of two equal-width operands. *)

val circuit : ?enable:bool -> bits:int -> name:string -> unit -> Netlist.Circuit.t
(** A standalone comparator; with [~enable:true] an extra input gates the
    three outputs. *)

val cm85 : unit -> Netlist.Circuit.t
(** 11 inputs: two 5-bit operands + enable. *)

val comp : unit -> Netlist.Circuit.t
(** 32 inputs: two 16-bit operands. *)
