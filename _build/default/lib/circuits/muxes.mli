(** 16:1 multiplexers — substitutes for the MCNC [cm150] and [mux]
    benchmarks (21 inputs each, two different gate-level structures). *)

val cm150 : unit -> Netlist.Circuit.t
(** Two-level AND-OR realization with one-hot select decode and an enable:
    4 select + enable + 16 data = 21 inputs (selects first — see the
    implementation note on diagram variable order). *)

val mux : unit -> Netlist.Circuit.t
(** Tree of 2:1 mux cells with a programmable output polarity: 4 select +
    polarity + 16 data = 21 inputs, true and complemented outputs. *)
