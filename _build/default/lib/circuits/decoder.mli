(** One-hot address decoders — substitute for the MCNC [decod] benchmark. *)

val circuit :
  ?address_bits:int -> ?enable:bool -> ?name:string -> unit ->
  Netlist.Circuit.t
(** [2^address_bits] one-hot outputs, optionally gated by an enable input. *)

val decod : unit -> Netlist.Circuit.t
(** The Table 1 instance: 4 address bits + enable = 5 inputs, 16 outputs. *)
