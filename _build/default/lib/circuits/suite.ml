type entry = {
  name : string;
  description : string;
  build : unit -> Netlist.Circuit.t;
  max_avg : int;
  max_ub : int;
}

(* MAX values follow Table 1 of the paper (columns "Model MAX" for average
   estimators and upper bounds). *)
let all =
  [
    {
      name = "alu2";
      description = "4-bit 4-operation ALU (10 inputs)";
      build = Alu.alu2;
      max_avg = 1000;
      max_ub = 5000;
    };
    {
      name = "alu4";
      description = "5-bit 16-operation ALU (14 inputs)";
      build = Alu.alu4;
      max_avg = 2000;
      max_ub = 15000;
    };
    {
      name = "cmb";
      description = "address-match control block (16 inputs)";
      build = Structured.cmb;
      max_avg = 200;
      max_ub = 1000;
    };
    {
      name = "cm150";
      description = "16:1 multiplexer, AND-OR structure (21 inputs)";
      build = Muxes.cm150;
      max_avg = 1000;
      max_ub = 2000;
    };
    {
      name = "cm85";
      description = "5-bit magnitude comparator with enable (11 inputs)";
      build = Comparator.cm85;
      max_avg = 500;
      max_ub = 500;
    };
    {
      name = "comp";
      description = "16-bit magnitude comparator (32 inputs)";
      build = Comparator.comp;
      max_avg = 5000;
      max_ub = 10000;
    };
    {
      name = "decod";
      description = "4-to-16 decoder with enable (5 inputs)";
      build = Decoder.decod;
      max_avg = 200;
      max_ub = 200;
    };
    {
      name = "k2";
      description = "random multi-level logic (45 inputs)";
      build = Random_logic.k2;
      (* The paper used MAX = 10000 and paid 2-5 CPU hours for this row
         (Table 1); 3000 keeps the shipped harness tractable.  Pass a
         larger --max-scale to cfpm table1 to restore the paper's bound. *)
      max_avg = 3000;
      max_ub = 3000;
    };
    {
      name = "mux";
      description = "16:1 multiplexer, mux-cell tree (21 inputs)";
      build = Muxes.mux;
      max_avg = 1000;
      max_ub = 5000;
    };
    {
      name = "parity";
      description = "16-bit parity tree (16 inputs)";
      build = Parity.parity;
      max_avg = 3000;
      max_ub = 500;
    };
    {
      name = "pcle";
      description = "parity-checked enable block (19 inputs)";
      build = Structured.pcle;
      max_avg = 5000;
      max_ub = 10000;
    };
    {
      name = "x1";
      description = "random multi-level logic (49 inputs)";
      build = Random_logic.x1;
      max_avg = 1000;
      max_ub = 50000;
    };
    {
      name = "x2";
      description = "random multi-level logic (10 inputs)";
      build = Random_logic.x2;
      max_avg = 200;
      max_ub = 2500;
    };
  ]

let names = List.map (fun e -> e.name) all

let find name =
  List.find_opt (fun e -> String.equal e.name name) all

let case_study =
  match find "cm85" with Some e -> e | None -> assert false
