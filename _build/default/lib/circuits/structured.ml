(* Structured control logic — substitutes for the MCNC [cmb] and [pcle]
   benchmarks (same input counts, comparable size and role: address-match
   and parity-checked-enable control blocks). *)

(* cmb substitute: 16 inputs = 12-bit address + 4 control bits.  The block
   matches the address against two hard-wired patterns and combines the
   hits with the control signals. *)
let cmb () =
  let open Netlist in
  let b = Builder.create ~name:"cmb" in
  let addr = Builder.inputs b "a" 12 in
  let ctl = Builder.inputs b "c" 4 in
  let match_pattern pattern =
    let lits =
      List.init 12 (fun i ->
          if (pattern lsr i) land 1 = 1 then addr.(i)
          else Builder.not_ b addr.(i))
    in
    Builder.and_n b lits
  in
  let hit0 = match_pattern 0xA5F in
  let hit1 = match_pattern 0x3C9 in
  let any = Builder.or2 b hit0 hit1 in
  let armed = Builder.and2 b ctl.(0) (Builder.not_ b ctl.(1)) in
  Builder.output b "sel0" (Builder.and2 b hit0 armed);
  Builder.output b "sel1" (Builder.and2 b hit1 armed);
  Builder.output b "any" (Builder.and2 b any (Builder.or2 b ctl.(2) ctl.(3)));
  Builder.finish b

(* pcle substitute: 19 inputs = 16 data bits + 3 control bits.  Byte
   parities are computed and compared; enables fire on parity agreement
   under the control mode bits. *)
let pcle () =
  let open Netlist in
  let b = Builder.create ~name:"pcle" in
  let d = Builder.inputs b "d" 16 in
  let ctl = Builder.inputs b "c" 3 in
  let byte lo = List.init 8 (fun i -> d.(lo + i)) in
  let p0 = Builder.xor_n b (byte 0) in
  let p1 = Builder.xor_n b (byte 8) in
  let agree = Builder.xnor2 b p0 p1 in
  let differ = Builder.not_ b agree in
  let word_parity = Builder.xor2 b p0 p1 in
  let mode_check = Builder.and2 b ctl.(0) ctl.(1) in
  let mode_pass = Builder.and2 b ctl.(0) (Builder.not_ b ctl.(1)) in
  Builder.output b "en_ok" (Builder.and2 b agree mode_check);
  Builder.output b "en_err"
    (Builder.and2 b differ (Builder.or2 b mode_check ctl.(2)));
  Builder.output b "par"
    (Builder.mux2 b ~sel:mode_pass ~if0:word_parity ~if1:p0);
  Builder.output b "strobe"
    (Builder.and_n b [ ctl.(0); ctl.(2); agree ]);
  Builder.finish b
