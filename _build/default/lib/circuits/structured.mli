(** Structured control blocks — substitutes for the MCNC [cmb] and [pcle]
    benchmarks. *)

val cmb : unit -> Netlist.Circuit.t
(** 16 inputs: 12-bit address matched against two hard-wired patterns,
    gated by 4 control bits. *)

val pcle : unit -> Netlist.Circuit.t
(** 19 inputs: byte parities of a 16-bit word compared and combined with 3
    mode bits into enable/error/parity/strobe outputs. *)
