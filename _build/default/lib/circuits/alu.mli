(** Small ALUs — substitutes for the MCNC [alu2] and [alu4] benchmarks. *)

val mux_tree :
  Netlist.Builder.t ->
  sel:Netlist.Circuit.net array -> choices:Netlist.Circuit.net array ->
  Netlist.Circuit.net
(** Binary mux-cell tree: [choices.(k)] is selected when the select bits
    (LSB first) encode [k].  The number of choices should be a power of
    two. *)

val alu2 : unit -> Netlist.Circuit.t
(** 10 inputs: two 4-bit operands + 2-bit opcode (ADD/AND/OR/XOR); 4 result
    bits and carry-out. *)

val alu4 : unit -> Netlist.Circuit.t
(** 14 inputs: two 5-bit operands + 4-bit opcode (16 operations including
    add, subtract, increment and the two-operand logic family); 5 result
    bits plus carry and zero flags. *)
