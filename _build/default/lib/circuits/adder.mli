(** Ripple-carry addition primitives, shared by the ALU generators and
    usable directly as a benchmark circuit. *)

val full_adder :
  Netlist.Builder.t ->
  a:Netlist.Circuit.net -> b:Netlist.Circuit.net -> cin:Netlist.Circuit.net ->
  Netlist.Circuit.net * Netlist.Circuit.net
(** [(sum, carry_out)]. *)

val half_adder :
  Netlist.Builder.t ->
  a:Netlist.Circuit.net -> b:Netlist.Circuit.net ->
  Netlist.Circuit.net * Netlist.Circuit.net

val ripple :
  Netlist.Builder.t ->
  a:Netlist.Circuit.net array -> b:Netlist.Circuit.net array ->
  cin:Netlist.Circuit.net ->
  Netlist.Circuit.net array * Netlist.Circuit.net
(** LSB-first ripple-carry adder; returns the sum bits and the carry out. *)

val incrementer :
  Netlist.Builder.t ->
  a:Netlist.Circuit.net array -> cin:Netlist.Circuit.net ->
  Netlist.Circuit.net array * Netlist.Circuit.net

val circuit : bits:int -> Netlist.Circuit.t
(** Standalone [2*bits + 1]-input adder circuit. *)
