(* MSB-first ripple magnitude comparator: at each bit the running
   greater/less signals latch once a difference is seen under an
   all-equal-so-far prefix. *)
let ripple b ~a ~b:bb =
  let open Netlist in
  let width = Array.length a in
  if Array.length bb <> width then
    invalid_arg "Comparator.ripple: width mismatch";
  if width = 0 then invalid_arg "Comparator.ripple: empty operands";
  let gt = ref (Builder.const b false) in
  let lt = ref (Builder.const b false) in
  let eq = ref (Builder.const b true) in
  for i = width - 1 downto 0 do
    let ai = a.(i) and bi = bb.(i) in
    let nbi = Builder.not_ b bi in
    let nai = Builder.not_ b ai in
    let a_gt = Builder.and2 b ai nbi in
    let a_lt = Builder.and2 b bi nai in
    gt := Builder.or2 b !gt (Builder.and2 b !eq a_gt);
    lt := Builder.or2 b !lt (Builder.and2 b !eq a_lt);
    eq := Builder.and2 b !eq (Builder.xnor2 b ai bi)
  done;
  (!gt, !eq, !lt)

let circuit ?(enable = false) ~bits ~name () =
  let open Netlist in
  let builder = Builder.create ~name in
  (* Operand bits are declared interleaved (a0 b0 a1 b1 ...): the model
     inherits the circuit's input order, and pairing the compared bits
     keeps the transition ADD compact (~4x smaller than block order). *)
  let pairs =
    Array.init bits (fun j ->
        let aj = Builder.input builder (Printf.sprintf "a%d" j) in
        let bj = Builder.input builder (Printf.sprintf "b%d" j) in
        (aj, bj))
  in
  let a = Array.map fst pairs in
  let bb = Array.map snd pairs in
  let en = if enable then Some (Builder.input builder "en") else None in
  let gt, eq, lt = ripple builder ~a ~b:bb in
  let gate net =
    match en with None -> net | Some e -> Builder.and2 builder net e
  in
  Builder.output builder "a_gt_b" (gate gt);
  Builder.output builder "a_eq_b" (gate eq);
  Builder.output builder "a_lt_b" (gate lt);
  Builder.finish builder

(* cm85 substitute: 11 inputs = two 5-bit operands plus an enable. *)
let cm85 () = circuit ~enable:true ~bits:5 ~name:"cm85" ()

(* comp substitute: 32 inputs = two 16-bit operands. *)
let comp () = circuit ~bits:16 ~name:"comp" ()
