(** Graphviz DOT export of decision diagrams (Fig. 3-style pictures).

    High cofactors are drawn with solid edges, low cofactors with dashed
    edges, matching the paper's figures. *)

val bdd : ?name:string -> ?var_name:(int -> string) -> Bdd.t -> string
(** DOT source for a BDD.  [var_name] labels variable indices (defaults to
    ["x<i>"]). *)

val add : ?name:string -> ?var_name:(int -> string) -> Add.t -> string
(** DOT source for an ADD; leaves are rendered as boxed values. *)
