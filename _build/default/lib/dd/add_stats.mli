(** Per-node statistics of the discrete functions represented by ADD nodes.

    These implement Eq. 5–8 of the paper in linear time: the average,
    variance, minimum and maximum of every sub-function, computed bottom-up
    by the recursion of Eq. 7 (leaves have [avg = value], [variance = 0]).
    The approximation strategies of {!Approx} rank collapse candidates with
    these numbers. *)

type t = {
  avg : float;      (** uniform-input average of the sub-function (Eq. 6) *)
  variance : float; (** uniform-input variance (Eq. 5) *)
  min : float;      (** smallest terminal value of the sub-function *)
  max : float;      (** largest terminal value of the sub-function *)
}

val all : Add.t -> (int, t) Hashtbl.t
(** Statistics for every node reachable from the root, keyed by node id.
    One bottom-up traversal, O(nodes). *)

val of_node : Add.t -> t
(** Statistics of a single diagram's root. *)

val of_leaf : float -> t

val combine : t -> t -> t
(** [combine low high] is Eq. 7 applied to the two cofactors. *)

val mse_upper : t -> float
(** Mean square error incurred by replacing the sub-function with its
    maximum (Eq. 8): [variance + (max - avg)^2].  The max strategy collapses
    minimum-[mse_upper] nodes first. *)

val mse_lower : t -> float
(** Symmetric quantity for lower bounds: [variance + (min - avg)^2]. *)

val mass : Add.t -> (int, float) Hashtbl.t
(** Probability, under uniform independent inputs, that evaluation reaches
    each node (the root has mass 1; a node shared by many paths accumulates
    the mass of all of them).  The global mean-square error of collapsing a
    node [n] to a constant is [mass(n)] times the node's own mean square
    error, so {!Approx} ranks collapse candidates by the product. *)
