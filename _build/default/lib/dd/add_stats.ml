type t = {
  avg : float;
  variance : float;
  min : float;
  max : float;
}

(* Eq. 7 of the paper: for an internal node n,
     avg(n) = (avg(low) + avg(high)) / 2
     var(n) = (var(low) + (avg(low) - avg(n))^2
             + var(high) + (avg(high) - avg(n))^2) / 2
   and for a leaf avg = value, var = 0.  Reduction (skipped levels) does not
   affect these: the uniform average of a function is invariant under adding
   variables it does not depend on. *)
let combine lo hi =
  let avg = 0.5 *. (lo.avg +. hi.avg) in
  let variance =
    0.5
    *. (lo.variance
       +. ((lo.avg -. avg) ** 2.0)
       +. hi.variance
       +. ((hi.avg -. avg) ** 2.0))
  in
  {
    avg;
    variance;
    min = Float.min lo.min hi.min;
    max = Float.max lo.max hi.max;
  }

let of_leaf value = { avg = value; variance = 0.0; min = value; max = value }

let all nodes_root =
  let table : (int, t) Hashtbl.t = Hashtbl.create 256 in
  let rec go (node : Add.t) =
    let id = Add.node_id node in
    match Hashtbl.find_opt table id with
    | Some s -> s
    | None ->
      let s =
        match node with
        | Add.Leaf l -> of_leaf l.value
        | Add.Node n -> combine (go n.low) (go n.high)
      in
      Hashtbl.add table id s;
      s
  in
  let _root_stats = go nodes_root in
  table

let of_node node = Hashtbl.find (all node) (Add.node_id node)

let mse_upper s = s.variance +. ((s.max -. s.avg) ** 2.0)
(* Eq. 8: mean square error of replacing the sub-function by its maximum. *)

let mse_lower s = s.variance +. ((s.min -. s.avg) ** 2.0)

(* Probability that a uniform random assignment reaches each node: 1 at the
   root, and each node passes half its mass to each child (accumulated over
   the DAG, parents before children).  Collapsing node n to a constant
   perturbs the global function with mean square error mass(n) * var-like
   score, which is what approximation strategies should rank by. *)
let mass root =
  let order = Add.fold_nodes root ~init:[] ~f:(fun acc n -> n :: acc) in
  (* fold_nodes emits children before parents; the accumulated list is
     therefore parents-first. *)
  let table : (int, float) Hashtbl.t = Hashtbl.create 256 in
  let get id = Option.value (Hashtbl.find_opt table id) ~default:0.0 in
  Hashtbl.replace table (Add.node_id root) 1.0;
  List.iter
    (fun node ->
      match node with
      | Add.Leaf _ -> ()
      | Add.Node n ->
        let m = get (Add.node_id node) /. 2.0 in
        Hashtbl.replace table (Add.node_id n.low) (get (Add.node_id n.low) +. m);
        Hashtbl.replace table (Add.node_id n.high)
          (get (Add.node_id n.high) +. m))
    order;
  table
