let default_var_name i = Printf.sprintf "x%d" i

let header name buf =
  Buffer.add_string buf (Printf.sprintf "digraph \"%s\" {\n" name);
  Buffer.add_string buf "  ordering=out;\n"

let edge buf src dst ~solid =
  Buffer.add_string buf
    (Printf.sprintf "  n%d -> n%d [style=%s];\n" src dst
       (if solid then "solid" else "dashed"))

let bdd ?(name = "bdd") ?(var_name = default_var_name) root =
  let buf = Buffer.create 1024 in
  header name buf;
  let seen = Hashtbl.create 64 in
  let rec go node =
    let id = Bdd.node_id node in
    if not (Hashtbl.mem seen id) then begin
      Hashtbl.add seen id ();
      match node with
      | Bdd.False ->
        Buffer.add_string buf
          (Printf.sprintf "  n%d [shape=box,label=\"0\"];\n" id)
      | Bdd.True ->
        Buffer.add_string buf
          (Printf.sprintf "  n%d [shape=box,label=\"1\"];\n" id)
      | Bdd.Node n ->
        Buffer.add_string buf
          (Printf.sprintf "  n%d [shape=circle,label=\"%s\"];\n" id
             (var_name n.var));
        edge buf id (Bdd.node_id n.high) ~solid:true;
        edge buf id (Bdd.node_id n.low) ~solid:false;
        go n.low;
        go n.high
    end
  in
  go root;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let add ?(name = "add") ?(var_name = default_var_name) root =
  let buf = Buffer.create 1024 in
  header name buf;
  let seen = Hashtbl.create 64 in
  let rec go node =
    let id = Add.node_id node in
    if not (Hashtbl.mem seen id) then begin
      Hashtbl.add seen id ();
      match node with
      | Add.Leaf l ->
        Buffer.add_string buf
          (Printf.sprintf "  n%d [shape=box,label=\"%g\"];\n" id l.value)
      | Add.Node n ->
        Buffer.add_string buf
          (Printf.sprintf "  n%d [shape=circle,label=\"%s\"];\n" id
             (var_name n.var));
        edge buf id (Add.node_id n.high) ~solid:true;
        edge buf id (Add.node_id n.low) ~solid:false;
        go n.low;
        go n.high
    end
  in
  go root;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
