(** Exact node masses and conditional moments of a transition ADD under
    Markov input statistics.

    The collapse criterion of {!Approx} must decide how much damage
    replacing a sub-ADD by a constant does.  Under the uniform measure the
    near-diagonal region (transitions with few toggles) has vanishing mass,
    yet it is exactly where evaluation concentrates when the input toggle
    rate is low — so a uniform-mass criterion silently sacrifices low-[st]
    accuracy.  This module computes, {e analytically}, each node's reach
    probability and conditional subfunction moments under any [(sp, st)]
    stimulus statistics, so that the collapse can be made robust across a
    family of statistics while remaining characterization-free (no
    simulation anywhere).

    Variables are assumed to follow the interleaved transition convention
    (variable [2j] = input [j] at [t_i], variable [2j+1] = input [j] at
    [t_f]); the one-variable dependency between the two copies is threaded
    through the reduced DAG as a "pending partner" context. *)

type statistics = { sp : float; st : float }

val uniform : statistics

val default_anchors : statistics list
(** The family of statistics the robust collapse criterion guards: a spread
    of toggle rates at [sp = 0.5] plus skewed signal probabilities. *)

val p_toggle_given : initial:bool -> statistics -> float
(** Markov toggle probability conditioned on the initial value. *)

type tables

val analyze : statistics -> Add.t -> tables
(** One top-down (masses) and one bottom-up (moments) traversal; O(nodes)
    per statistics point. *)

val node_mass : tables -> int -> float
(** Reach probability of a node (by id), all contexts combined. *)

val node_moments : tables -> int -> default:(float * float) -> float * float * float
(** [(mass, E[f | reach], E[f^2 | reach])] of a node's subfunction under
    the analyzed statistics, mixing contexts by their masses.  Unreachable
    nodes report zero mass and the supplied default moments. *)
