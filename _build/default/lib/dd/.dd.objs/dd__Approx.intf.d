lib/dd/approx.mli: Add Add_stats Markov
