lib/dd/dot.ml: Add Bdd Buffer Hashtbl Printf
