lib/dd/add_stats.mli: Add Hashtbl
