lib/dd/add.mli: Bdd
