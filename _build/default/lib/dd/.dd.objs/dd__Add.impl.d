lib/dd/add.ml: Array Bdd Float Hashtbl Int64 List
