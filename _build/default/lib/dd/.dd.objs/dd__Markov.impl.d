lib/dd/markov.ml: Add Array Float Hashtbl List
