lib/dd/bdd.ml: Array Hashtbl List
