lib/dd/markov.mli: Add
