lib/dd/bdd.mli:
