lib/dd/dot.mli: Add Bdd
