lib/dd/add_stats.ml: Add Float Hashtbl List Option
