lib/dd/approx.ml: Add Add_stats Array Float Hashtbl List Markov
