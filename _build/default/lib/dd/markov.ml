(* Node masses and conditional moments of a transition ADD under Markov
   input statistics.

   The diagrams built by the power-model construction are functions of
   interleaved variable pairs: variable 2j is input j at time t_i, variable
   2j+1 the same input at t_f.  Under the stimulus model (per-bit Markov
   chain with signal probability sp and toggle rate st), path probabilities
   are not uniform: the final-copy branch depends on the initial-copy value
   chosen one level up.  This module propagates that one-variable context
   (the "pending" partner value) through the reduced DAG to obtain, for
   every node,

   - its reach probability (mass) under (sp, st), and
   - the conditional first and second moments of its subfunction given
     that it is reached.

   All quantities are exact and purely analytic — no simulation — which is
   what lets {!Approx} collapse nodes by their damage under a whole family
   of statistics while staying characterization-free. *)

type statistics = { sp : float; st : float }

let uniform = { sp = 0.5; st = 0.5 }

(* A signal-probability x toggle-rate grid (feasible points only):
   low toggle rates are heavily represented because that is where
   uniform-measure criteria fail, and skewed signal probabilities guard the
   sp axis. *)
let default_anchors =
  let sps = [ 0.2; 0.5; 0.8 ] in
  let sts = [ 0.02; 0.05; 0.15; 0.3; 0.5; 0.7; 0.9 ] in
  List.concat_map
    (fun sp ->
      List.filter_map
        (fun st ->
          if st <= 2.0 *. Float.min sp (1.0 -. sp) then Some { sp; st }
          else None)
        sts)
    sps

let p_high_initial s = s.sp

(* stationary two-state chain realizing (sp, st):
   P(0->1) = st / (2 (1-sp)),  P(1->0) = st / (2 sp) *)
let p_toggle_given ~initial s =
  if initial then Float.min 1.0 (s.st /. (2.0 *. s.sp))
  else Float.min 1.0 (s.st /. (2.0 *. (1.0 -. s.sp)))

let p_high_final ~pending s =
  match pending with
  | Some true -> 1.0 -. p_toggle_given ~initial:true s
  | Some false -> p_toggle_given ~initial:false s
  | None -> s.sp (* partner not on the path: stationary marginal *)

(* Contexts: the pending initial-copy value, if the node's variable is a
   final copy whose partner was decided on the immediately preceding
   level. *)
let n_contexts = 3

let ctx_none = 0
let ctx_low = 1
let ctx_high = 2

let pending_of_ctx = function
  | 1 -> Some false
  | 2 -> Some true
  | _ -> None

let is_initial_var v = v land 1 = 0

let child_ctx parent_var branch child =
  if is_initial_var parent_var then begin
    match child with
    | Add.Node c when c.var = parent_var + 1 ->
      if branch then ctx_high else ctx_low
    | Add.Node _ | Add.Leaf _ -> ctx_none
  end
  else ctx_none

type tables = {
  mass : (int, float array) Hashtbl.t;     (* per node, per context *)
  moment1 : (int, float array) Hashtbl.t;
  moment2 : (int, float array) Hashtbl.t;
}

let analyze stats_point root =
  let mass : (int, float array) Hashtbl.t = Hashtbl.create 256 in
  let moment1 : (int, float array) Hashtbl.t = Hashtbl.create 256 in
  let moment2 : (int, float array) Hashtbl.t = Hashtbl.create 256 in
  let cell table id init =
    match Hashtbl.find_opt table id with
    | Some a -> a
    | None ->
      let a = Array.make n_contexts init in
      Hashtbl.add table id a;
      a
  in
  (* Bottom-up conditional moments (lazily per encountered context). *)
  let rec moments node ctx =
    let id = Add.node_id node in
    let m1 = cell moment1 id nan and m2 = cell moment2 id nan in
    if Float.is_nan m1.(ctx) then begin
      let v1, v2 =
        match node with
        | Add.Leaf l -> (l.value, l.value *. l.value)
        | Add.Node n ->
          let p_high =
            if is_initial_var n.var then p_high_initial stats_point
            else p_high_final ~pending:(pending_of_ctx ctx) stats_point
          in
          let l1, l2 = moments n.low (child_ctx n.var false n.low) in
          let h1, h2 = moments n.high (child_ctx n.var true n.high) in
          ( ((1.0 -. p_high) *. l1) +. (p_high *. h1),
            ((1.0 -. p_high) *. l2) +. (p_high *. h2) )
      in
      m1.(ctx) <- v1;
      m2.(ctx) <- v2
    end;
    (m1.(ctx), m2.(ctx))
  in
  let _ = moments root ctx_none in
  (* Top-down masses over the parents-first order. *)
  let order = Add.fold_nodes root ~init:[] ~f:(fun acc n -> n :: acc) in
  (cell mass (Add.node_id root) 0.0).(ctx_none) <- 1.0;
  List.iter
    (fun node ->
      match node with
      | Add.Leaf _ -> ()
      | Add.Node n ->
        let here = cell mass (Add.node_id node) 0.0 in
        let flow ctx m =
          if m > 0.0 then begin
            let p_high =
              if is_initial_var n.var then p_high_initial stats_point
              else p_high_final ~pending:(pending_of_ctx ctx) stats_point
            in
            let lo = cell mass (Add.node_id n.low) 0.0 in
            let hi = cell mass (Add.node_id n.high) 0.0 in
            let lo_ctx = child_ctx n.var false n.low in
            let hi_ctx = child_ctx n.var true n.high in
            lo.(lo_ctx) <- lo.(lo_ctx) +. ((1.0 -. p_high) *. m);
            hi.(hi_ctx) <- hi.(hi_ctx) +. (p_high *. m)
          end
        in
        for ctx = 0 to n_contexts - 1 do
          flow ctx here.(ctx)
        done)
    order;
  { mass; moment1; moment2 }

let node_mass t id =
  match Hashtbl.find_opt t.mass id with
  | None -> 0.0
  | Some a -> a.(0) +. a.(1) +. a.(2)

(* Context-mixed conditional moments of node [id], weighted by the masses
   with which each context is reached.  Unreached nodes report zero mass
   and the supplied default moments. *)
let node_moments t id ~default =
  match
    ( Hashtbl.find_opt t.mass id,
      Hashtbl.find_opt t.moment1 id,
      Hashtbl.find_opt t.moment2 id )
  with
  | Some masses, Some m1, Some m2 ->
    let total = masses.(0) +. masses.(1) +. masses.(2) in
    if total <= 0.0 then (0.0, fst default, snd default)
    else begin
      let acc1 = ref 0.0 and acc2 = ref 0.0 in
      for ctx = 0 to n_contexts - 1 do
        if masses.(ctx) > 0.0 then begin
          (* a context with positive mass was necessarily visited by the
             moment recursion *)
          acc1 := !acc1 +. (masses.(ctx) *. m1.(ctx));
          acc2 := !acc2 +. (masses.(ctx) *. m2.(ctx))
        end
      done;
      (total, !acc1 /. total, !acc2 /. total)
    end
  | _ -> (0.0, fst default, snd default)
