lib/stimulus/prng.mli:
