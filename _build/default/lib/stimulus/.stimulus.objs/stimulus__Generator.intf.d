lib/stimulus/generator.mli: Prng
