lib/stimulus/generator.ml: Array Float Prng
