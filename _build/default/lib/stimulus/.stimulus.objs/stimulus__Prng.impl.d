lib/stimulus/prng.ml: Int64
