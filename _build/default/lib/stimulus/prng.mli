(** Deterministic pseudo-random number generation (SplitMix64).

    The experiment harness must be reproducible run-to-run, so it never uses
    the global [Random] state: every stream is derived from an explicit
    seed. *)

type t

val create : int -> t
(** A fresh generator from a seed. *)

val copy : t -> t

val next_int64 : t -> int64

val float : t -> float
(** Uniform in [[0, 1)]. *)

val bool : t -> p:float -> bool
(** Bernoulli draw with probability [p] of [true]. *)

val int : t -> bound:int -> int
(** Uniform in [[0, bound)]; [bound] must be positive. *)

val split : t -> t
(** Derive an independent stream (consumes one draw from the parent). *)
