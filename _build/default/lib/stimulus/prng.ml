(* SplitMix64: tiny, fast, high-quality 64-bit PRNG with a trivially
   seedable state.  Deterministic across runs and platforms, which the
   experiment harness relies on for reproducibility. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let golden = 0x9E3779B97F4A7C15L

let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits53 t =
  Int64.to_float (Int64.shift_right_logical (next_int64 t) 11)

let float t =
  (* uniform in [0, 1) *)
  bits53 t /. 9007199254740992.0 (* 2^53 *)

let bool t ~p =
  if p <= 0.0 then false else if p >= 1.0 then true else float t < p

let int t ~bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* rejection-free modulo is fine for our non-cryptographic use *)
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next_int64 t) 1) (Int64.of_int bound))

let split t =
  (* derive an independent stream *)
  create (Int64.to_int (next_int64 t))
