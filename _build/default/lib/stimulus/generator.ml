(* Random input streams with prescribed per-bit signal probability [sp]
   (stationary probability of being 1) and transition probability [st]
   (probability of toggling between consecutive vectors).

   Each bit follows a two-state Markov chain with
     P(0 -> 1) = st / (2 (1 - sp))     P(1 -> 0) = st / (2 sp)
   whose stationary distribution is Bernoulli(sp) and whose stationary
   toggle rate is st.  The first vector is drawn from the stationary
   distribution, so the whole stream is stationary.  Feasibility requires
   st <= 2 * min(sp, 1 - sp); infeasible requests are clamped (and
   reported by [feasible_st]). *)

let feasible_st ~sp st = Float.min st (2.0 *. Float.min sp (1.0 -. sp))

let rates ~sp ~st =
  if sp <= 0.0 || sp >= 1.0 then
    invalid_arg "Generator.rates: sp must be strictly between 0 and 1";
  if st < 0.0 || st > 1.0 then
    invalid_arg "Generator.rates: st must be in [0, 1]";
  let st = feasible_st ~sp st in
  let p01 = st /. (2.0 *. (1.0 -. sp)) in
  let p10 = st /. (2.0 *. sp) in
  (Float.min 1.0 p01, Float.min 1.0 p10)

let sequence prng ~bits ~length ~sp ~st =
  if length < 1 then invalid_arg "Generator.sequence: length must be >= 1";
  if bits < 1 then invalid_arg "Generator.sequence: bits must be >= 1";
  let p01, p10 = rates ~sp ~st in
  let first = Array.init bits (fun _ -> Prng.bool prng ~p:sp) in
  let vectors = Array.make length first in
  for k = 1 to length - 1 do
    let prev = vectors.(k - 1) in
    vectors.(k) <-
      Array.init bits (fun i ->
          if prev.(i) then not (Prng.bool prng ~p:p10)
          else Prng.bool prng ~p:p01)
  done;
  vectors

let uniform_pair prng ~bits =
  let v () = Array.init bits (fun _ -> Prng.bool prng ~p:0.5) in
  (v (), v ())

type measured = { measured_sp : float; measured_st : float }

let measure vectors =
  let length = Array.length vectors in
  if length < 2 then invalid_arg "Generator.measure: need at least 2 vectors";
  let bits = Array.length vectors.(0) in
  let ones = ref 0 and toggles = ref 0 in
  Array.iter
    (fun v -> Array.iter (fun b -> if b then incr ones) v)
    vectors;
  for k = 1 to length - 1 do
    for i = 0 to bits - 1 do
      if vectors.(k).(i) <> vectors.(k - 1).(i) then incr toggles
    done
  done;
  {
    measured_sp = float_of_int !ones /. float_of_int (length * bits);
    measured_st = float_of_int !toggles /. float_of_int ((length - 1) * bits);
  }
