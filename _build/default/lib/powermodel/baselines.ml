(* The two characterization-based reference models of Section 4:

   - [Con]: a constant estimator, the sample mean of the per-pattern
     switched capacitance observed in a gate-level characterization run;
   - [Lin]: a linear model  C ~ c0 + sum_j c_j a_j  with a_j = x_i_j XOR
     x_f_j (the input transition bits), least-squares fitted on the same
     run.

   Both are characterized with random vectors at sp = st = 0.5, exactly as
   the paper does, which is what makes their out-of-sample error explode
   when the input statistics move. *)

type t =
  | Con of { value : float }
  | Lin of { coeffs : float array (* c0 :: per-input *) }

let name = function Con _ -> "Con" | Lin _ -> "Lin"

let characterization_sample sim vectors =
  let run = Gatesim.Simulator.run sim vectors in
  (run, vectors)

let characterize_con sim vectors =
  let run, _ = characterization_sample sim vectors in
  Con { value = run.Gatesim.Simulator.average }

let transition_features x_i x_f =
  let n = Array.length x_i in
  Array.init (n + 1) (fun k ->
      if k = 0 then 1.0
      else if x_i.(k - 1) <> x_f.(k - 1) then 1.0
      else 0.0)

let characterize_lin sim vectors =
  let run, vectors = characterization_sample sim vectors in
  let rows = ref [] in
  let count = Array.length vectors in
  for k = count - 1 downto 1 do
    rows :=
      ( transition_features vectors.(k - 1) vectors.(k),
        run.Gatesim.Simulator.per_pattern.(k - 1) )
      :: !rows
  done;
  let n = Array.length vectors.(0) in
  let coeffs = Linalg.Lstsq.fit !rows ~features:(n + 1) in
  Lin { coeffs }

let estimate t ~x_i ~x_f =
  match t with
  | Con { value } -> value
  | Lin { coeffs } ->
    Linalg.Lstsq.predict coeffs (transition_features x_i x_f)

type run = {
  patterns : int;
  average : float;
  maximum : float;
}

let run t vectors =
  let count = Array.length vectors in
  if count < 2 then invalid_arg "Baselines.run: need at least two vectors";
  let total = ref 0.0 and maximum = ref neg_infinity in
  for k = 1 to count - 1 do
    let c = estimate t ~x_i:vectors.(k - 1) ~x_f:vectors.(k) in
    total := !total +. c;
    if c > !maximum then maximum := c
  done;
  {
    patterns = count - 1;
    average = !total /. float_of_int (count - 1);
    maximum = !maximum;
  }
