lib/powermodel/vars.ml: Array Printf
