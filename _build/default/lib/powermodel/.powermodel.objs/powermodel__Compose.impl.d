lib/powermodel/compose.ml: Array List Model Printf
