lib/powermodel/baselines.ml: Array Gatesim Linalg
