lib/powermodel/vars.mli:
