lib/powermodel/bounds.mli: Dd Gatesim Model Netlist
