lib/powermodel/model.mli: Dd Netlist
