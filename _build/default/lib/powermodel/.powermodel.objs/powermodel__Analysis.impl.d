lib/powermodel/analysis.ml: Array Dd Hashtbl Model Vars
