lib/powermodel/model.ml: Array Dd Netlist Sys Vars
