lib/powermodel/baselines.mli: Gatesim
