lib/powermodel/analysis.mli: Model
