lib/powermodel/compose.mli: Model
