lib/powermodel/bounds.ml: Array Dd Gatesim Model
