(** Characterization-based reference models ([Con] and [Lin] of Section 4).

    Both are tuned against a zero-delay gate-level simulation sample — the
    classical black-box flow the paper argues against.  They are accurate
    in-sample and drift badly out-of-sample, which is the comparison
    Fig. 7a and Table 1 make. *)

type t =
  | Con of { value : float }
      (** constant estimator: the characterization-run average *)
  | Lin of { coeffs : float array }
      (** linear-in-transition-bits model
          [c0 + c1 a1 + ... + cn an], [a_j = x_i_j XOR x_f_j] *)

val name : t -> string

val characterize_con : Gatesim.Simulator.t -> bool array array -> t
(** Fit the constant model on a characterization sequence (the paper uses
    random vectors with sp = st = 0.5). *)

val characterize_lin : Gatesim.Simulator.t -> bool array array -> t
(** Least-squares fit of the linear model on a characterization sequence. *)

val transition_features : bool array -> bool array -> float array
(** Feature row [1, a_1 .. a_n] of one transition. *)

val estimate : t -> x_i:bool array -> x_f:bool array -> float
(** Per-pattern estimate in fF (the linear model can go negative — it is
    used unclamped, as in the paper). *)

type run = {
  patterns : int;
  average : float;
  maximum : float;
}

val run : t -> bool array array -> run
