(** Variable numbering for transition functions [C(x_i, x_f)].

    The initial and final copies of input [j] are interleaved
    ([2j] and [2j+1]) so that the strongly correlated pair is adjacent in
    the diagram variable order. *)

val initial : int -> int
(** Diagram variable of input [j] at time [t_i]. *)

val final : int -> int
(** Diagram variable of input [j] at time [t_f]. *)

val count : inputs:int -> int
(** Total diagram variables for an [inputs]-input macro. *)

val env : x_i:bool array -> x_f:bool array -> bool array
(** Merge an input transition into a diagram assignment. *)

val name : inputs:int -> int -> string
(** Human-readable variable label, e.g. ["x3_f"]. *)
