(* Variable numbering convention for transition functions.

   A model of [C(x_i, x_f)] is a discrete function of 2n Boolean variables.
   We interleave the two copies — variable [2j] is input j at time t_i,
   variable [2j+1] is input j at time t_f — so that correlated bit pairs
   sit next to each other in the diagram order, which keeps comparator- and
   mux-like ADDs compact. *)

let initial j = 2 * j
let final j = (2 * j) + 1

let count ~inputs = 2 * inputs

let env ~x_i ~x_f =
  let n = Array.length x_i in
  if Array.length x_f <> n then invalid_arg "Vars.env: width mismatch";
  Array.init (2 * n) (fun v -> if v land 1 = 0 then x_i.(v / 2) else x_f.(v / 2))

let name ~inputs v =
  if v < 0 || v >= 2 * inputs then invalid_arg "Vars.name: out of range";
  Printf.sprintf "x%d%s" (v / 2) (if v land 1 = 0 then "_i" else "_f")
