(* BLIF import flow: model a user-supplied netlist.

     dune exec examples/blif_flow.exe             # built-in demo circuit
     dune exec examples/blif_flow.exe -- my.blif  # your own file

   The paper's flow starts from MCNC circuits in BLIF; this example parses
   a BLIF description, technology-maps it onto the cell library, and runs
   the whole modeling pipeline on the result.  It also round-trips a suite
   circuit through the BLIF writer to show the exporter. *)

let demo_blif =
  {|
# 2-bit multiplier with a carry-save flavour
.model mult2
.inputs a0 a1 b0 b1
.outputs p0 p1 p2 p3
.names a0 b0 p0
11 1
.names a1 b0 t1
11 1
.names a0 b1 t2
11 1
.names a1 b1 t3
11 1
.names t1 t2 p1
01 1
10 1
.names t1 t2 c1
11 1
.names t3 c1 p2
01 1
10 1
.names t3 c1 p3
11 1
.end
|}

let () =
  let source =
    if Array.length Sys.argv > 1 then begin
      let ic = open_in Sys.argv.(1) in
      let len = in_channel_length ic in
      let s = really_input_string ic len in
      close_in ic;
      s
    end
    else demo_blif
  in
  let circuit =
    match Netlist.Blif.parse source with
    | Ok c -> c
    | Error err ->
      Printf.eprintf "BLIF error: %s\n" (Guard.Error.to_string err);
      exit (Guard.Error.exit_code err)
  in
  Format.printf "parsed: %a@." Netlist.Circuit.pp circuit;

  let model = Powermodel.Model.build ~max_size:5000 circuit in
  Printf.printf "model: %d nodes (exact: %b)\n"
    (Powermodel.Model.size model)
    (Powermodel.Model.is_exact model);
  Printf.printf "uniform-average switching capacitance: %.2f fF\n"
    (Powermodel.Model.average_capacitance model);

  (* validate against the golden simulator on a short random run *)
  let sim = Gatesim.Simulator.create circuit in
  let bits = Netlist.Circuit.input_count circuit in
  let prng = Stimulus.Prng.create 3 in
  let vectors =
    Stimulus.Generator.sequence prng ~bits ~length:1000 ~sp:0.5 ~st:0.5
  in
  let truth = (Gatesim.Simulator.run sim vectors).Gatesim.Simulator.average in
  let est = (Powermodel.Model.run model vectors).Powermodel.Model.average in
  Printf.printf "random run: simulated %.2f fF, model %.2f fF\n" truth est;

  (* and the writer: export a suite circuit, re-parse, check equivalence on
     random vectors *)
  let cm85 = Circuits.Comparator.cm85 () in
  let text = Netlist.Blif.to_string cm85 in
  (match Netlist.Blif.parse text with
  | Error err ->
    Printf.eprintf "round-trip failed: %s\n" (Guard.Error.to_string err);
    exit 1
  | Ok reparsed ->
    let sim1 = Gatesim.Simulator.create cm85 in
    let sim2 = Gatesim.Simulator.create reparsed in
    let agree = ref true in
    let prng = Stimulus.Prng.create 4 in
    for _ = 1 to 500 do
      let v = Array.init 11 (fun _ -> Stimulus.Prng.bool prng ~p:0.5) in
      if
        Gatesim.Simulator.eval_outputs sim1 v
        <> Gatesim.Simulator.eval_outputs sim2 v
      then agree := false
    done;
    Printf.printf
      "cm85 exported to BLIF (%d bytes) and re-parsed: functionally %s\n"
      (String.length text)
      (if !agree then "equivalent on 500 random vectors" else "DIFFERENT"))
